#include "chaos/nemesis.h"

#include <algorithm>
#include <sstream>

#include "common/assert.h"

namespace cht::chaos {

NemesisProfile nemesis_profile(const std::string& name, Duration delta,
                               Duration epsilon) {
  NemesisProfile p;
  p.name = name;
  p.tick_min = 15 * delta;
  p.tick_max = 40 * delta;
  p.partition_min = 10 * delta;
  p.partition_max = 60 * delta;
  p.link_delay_max = 8 * delta;
  p.gst_shift_max = 40 * delta;
  p.downtime_min = 10 * delta;
  p.downtime_max = 40 * delta;
  // Crash-loop cycles run much faster than a bounce: the victim is killed
  // again before any stack's recovery round (lease handshake, VR recovery
  // quorum, Raft election) can finish. Downtime delta/2..2*delta, up-time
  // delta/4..delta.
  p.loop_downtime_min = Duration::micros(delta.to_micros() / 2);
  p.loop_downtime_max = 2 * delta;
  p.loop_uptime_min = Duration::micros(delta.to_micros() / 4);
  p.loop_uptime_max = delta;
  if (name == "calm") {
    return p;
  }
  if (name == "rolling-partitions") {
    p.w_partition = 1.0;
    p.w_isolate = 0.35;
    p.w_link_delay = 0.4;
    p.w_gst_shift = 0.15;
    p.w_duplicate = 0.15;
    return p;
  }
  if (name == "leader-hunter") {
    p.target_leader = true;
    p.w_crash = 0.25;
    p.w_isolate = 0.5;
    p.w_partition = 0.5;
    p.w_link_delay = 0.2;
    p.max_crashes = 2;
    return p;
  }
  if (name == "power-cycle") {
    // Rolling restarts: processes bounce (crash + powered-off downtime +
    // recovery from stable storage) continuously, never more than a minority
    // down at once but with no bound on total cycles, plus enough partition
    // pressure that recovering replicas rejoin under message loss. This is
    // the profile the durability invariant earns its keep on: every
    // acknowledged write must survive arbitrarily many of these cycles even
    // though each crash tears/loses unsynced storage writes.
    p.w_bounce = 1.0;
    p.w_restart = 0.35;
    p.w_partition = 0.3;
    p.w_link_delay = 0.2;
    p.max_crashes = 2;
    return p;
  }
  if (name == "crash-loop") {
    // The same process is bounced repeatedly with downtimes and up-times
    // shorter than recovery completes: each incarnation dies mid-replay,
    // with its group-commit window half-flushed and its in-flight syncs
    // abandoned. This is the profile that earns incarnation-namespaced
    // OperationIds their keep — a slow loop of full power cycles
    // (power-cycle profile) never re-runs recovery over a *partially
    // recovered* predecessor the way this does.
    p.w_crash_loop = 1.0;
    p.w_restart = 0.2;
    p.w_partition = 0.25;
    p.w_link_delay = 0.2;
    p.max_crashes = 2;
    return p;
  }
  if (name == "clock-storm") {
    // Skew up to 5x epsilon: well beyond the synchrony bound, so leases can
    // look valid too long (stale reads) or expired too early (stalls). The
    // RMW sub-history must stay linearizable regardless.
    p.w_clock_skew = 1.0;
    p.w_isolate = 0.25;
    p.w_link_delay = 0.2;
    p.clock_skew_max = 5 * epsilon;
    p.allows_stale_reads = true;
    return p;
  }
  if (name == "degraded-reads") {
    // Pure clock torture aimed at the clock-health guard: faster fault
    // ticks than any other profile and skew up to 8x epsilon, with no
    // partition/isolation noise so every anomaly on the read path traces
    // back to clocks. Reads are still marked stale-tolerant — but with the
    // guard on, the exposure-window accounting only excuses a stale read
    // served inside the bounded window before detecting evidence lands
    // (see invariants.cc).
    p.tick_min = 8 * delta;
    p.tick_max = 20 * delta;
    p.w_clock_skew = 1.0;
    p.w_link_delay = 0.15;
    p.clock_skew_max = 8 * epsilon;
    p.allows_stale_reads = true;
    return p;
  }
  CHT_ASSERT(false, "unknown nemesis profile");
  return p;
}

const std::vector<std::string>& known_profiles() {
  static const std::vector<std::string> kProfiles = {
      "calm", "rolling-partitions", "leader-hunter", "clock-storm",
      "power-cycle", "crash-loop", "degraded-reads"};
  return kProfiles;
}

Nemesis::Nemesis(ClusterAdapter& cluster, NemesisProfile profile,
                 std::uint64_t seed)
    : cluster_(cluster), profile_(std::move(profile)), rng_(seed) {}

void Nemesis::arm(Duration active_window) {
  active_until_ = cluster_.sim().now() + active_window;
  const double total = profile_.w_partition + profile_.w_isolate +
                       profile_.w_crash + profile_.w_link_delay +
                       profile_.w_clock_skew + profile_.w_gst_shift +
                       profile_.w_duplicate + profile_.w_restart +
                       profile_.w_bounce + profile_.w_crash_loop;
  if (total <= 0) return;  // calm: nothing to schedule
  tick_timer_ = cluster_.sim().after(
      Duration::micros(rng_.next_in(profile_.tick_min.to_micros(),
                                    profile_.tick_max.to_micros())),
      [this] { tick(); });
}

void Nemesis::tick() {
  if (cluster_.sim().now() >= active_until_) return;
  act();
  tick_timer_ = cluster_.sim().after(
      Duration::micros(rng_.next_in(profile_.tick_min.to_micros(),
                                    profile_.tick_max.to_micros())),
      [this] { tick(); });
}

int Nemesis::pick_victim() {
  if (profile_.target_leader) {
    const int leader = cluster_.leader();
    if (leader >= 0) return leader;
  }
  return static_cast<int>(rng_.next_below(
      static_cast<std::uint64_t>(cluster_.n())));
}

void Nemesis::note(const std::string& line) {
  std::ostringstream os;
  os << cluster_.sim().now().to_millis_f() << "ms  " << line;
  log_.push_back(os.str());
}

int Nemesis::down_now() const {
  // A replica still running its recovery protocol counts as down: VR's
  // recovery needs a majority of *normal* replicas to answer, so crashing
  // another process while one is mid-recovery can exceed the protocol's
  // failure assumption (see ClusterAdapter::recovering).
  int down = 0;
  for (int i = 0; i < cluster_.n(); ++i) {
    if (cluster_.crashed(i) || cluster_.recovering(i)) ++down;
  }
  return down;
}

void Nemesis::do_restart(int p) {
  pending_restarts_.erase(p);
  ++restarts_;
  cluster_.restart(p);
  note("restart p" + std::to_string(p));
}

void Nemesis::act() {
  const double weights[] = {profile_.w_partition, profile_.w_isolate,
                            profile_.w_crash,     profile_.w_link_delay,
                            profile_.w_clock_skew, profile_.w_gst_shift,
                            profile_.w_duplicate,  profile_.w_restart,
                            profile_.w_bounce,     profile_.w_crash_loop};
  double total = 0;
  for (double w : weights) total += w;
  double draw = rng_.next_double() * total;
  int action = 0;
  while (action < 9 && draw >= weights[action]) {
    draw -= weights[action];
    ++action;
  }

  sim::Simulation& sim = cluster_.sim();
  const int n = cluster_.n();
  const int a = pick_victim();
  int b = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(n - 1)));
  if (b >= a) ++b;

  switch (action) {
    case 0: {  // directed partition with heal
      const bool both_ways = rng_.next_bool(0.5);
      const Duration hold = Duration::micros(rng_.next_in(
          profile_.partition_min.to_micros(), profile_.partition_max.to_micros()));
      cut_links_.insert({a, b});
      sim.network().set_link_down(ProcessId(a), ProcessId(b), true);
      if (both_ways) {
        cut_links_.insert({b, a});
        sim.network().set_link_down(ProcessId(b), ProcessId(a), true);
      }
      note("partition p" + std::to_string(a) +
           (both_ways ? " <-> p" : " -> p") + std::to_string(b) + " for " +
           std::to_string(hold.to_millis_f()) + "ms");
      sim.after(hold, [this, a, b, both_ways] {
        if (cut_links_.erase({a, b}) > 0) {
          cluster_.sim().network().set_link_down(ProcessId(a), ProcessId(b),
                                                 false);
        }
        if (both_ways && cut_links_.erase({b, a}) > 0) {
          cluster_.sim().network().set_link_down(ProcessId(b), ProcessId(a),
                                                 false);
        }
        note("heal p" + std::to_string(a) + " / p" + std::to_string(b));
      });
      break;
    }
    case 1: {  // full isolation with heal
      if (isolated_.contains(a)) break;
      const Duration hold = Duration::micros(rng_.next_in(
          profile_.partition_min.to_micros(), profile_.partition_max.to_micros()));
      isolated_.insert(a);
      sim.network().set_process_isolated(ProcessId(a), true, n);
      note("isolate p" + std::to_string(a) + " for " +
           std::to_string(hold.to_millis_f()) + "ms");
      sim.after(hold, [this, a, n] {
        if (isolated_.erase(a) > 0) {
          cluster_.sim().network().set_process_isolated(ProcessId(a), false, n);
          note("deisolate p" + std::to_string(a));
        }
      });
      break;
    }
    case 2: {  // crash, bounded to a minority down at once
      const int budget = std::min(profile_.max_crashes, (n - 1) / 2);
      if (down_now() >= budget || cluster_.crashed(a)) break;
      ++crashes_;
      sim.crash(ProcessId(a));
      note("crash p" + std::to_string(a));
      break;
    }
    case 3: {  // one-shot link delay
      const Duration extra = Duration::micros(
          rng_.next_in(0, profile_.link_delay_max.to_micros()));
      sim.network().add_link_delay(ProcessId(a), ProcessId(b), extra);
      note("delay p" + std::to_string(a) + " -> p" + std::to_string(b) +
           " by " + std::to_string(extra.to_millis_f()) + "ms");
      break;
    }
    case 4: {  // clock-offset bump
      const std::int64_t bound = profile_.clock_skew_max.to_micros();
      if (bound == 0) break;
      const Duration offset = Duration::micros(rng_.next_in(-bound, bound));
      skewed_.insert(a);
      skew_events_.push_back({sim.now(), a, offset});
      sim.set_clock_offset(ProcessId(a), offset);
      note("clock p" + std::to_string(a) + " offset " +
           std::to_string(offset.to_millis_f()) + "ms");
      break;
    }
    case 5: {  // GST shift: re-open the asynchronous period
      const Duration shift = Duration::micros(
          rng_.next_in(0, profile_.gst_shift_max.to_micros()));
      const RealTime new_gst = sim.now() + shift;
      if (new_gst > sim.network().config().gst) {
        sim.network().set_gst(new_gst);
        note("gst shift to " + std::to_string(new_gst.to_millis_f()) + "ms");
      }
      break;
    }
    case 6: {  // duplication burst (bites while the network is pre-GST)
      if (duplication_on_) break;
      duplication_on_ = true;
      sim.network().set_pre_gst_duplicate_probability(0.3);
      const Duration hold = Duration::micros(rng_.next_in(
          profile_.partition_min.to_micros(), profile_.partition_max.to_micros()));
      note("duplication on for " + std::to_string(hold.to_millis_f()) + "ms");
      sim.after(hold, [this] {
        if (duplication_on_) {
          duplication_on_ = false;
          cluster_.sim().network().set_pre_gst_duplicate_probability(0.0);
          note("duplication off");
        }
      });
      break;
    }
    case 7: {  // restart: power a crashed process back up early
      int count = 0;
      for (int i = 0; i < n; ++i) {
        if (cluster_.crashed(i)) ++count;
      }
      if (count == 0) break;
      // Deterministic choice among the currently-down (skip bounce victims
      // only if everything down is bounce-pending — an early power-on then
      // just preempts the scheduled one, which no-ops at fire time).
      int pick = static_cast<int>(
          rng_.next_below(static_cast<std::uint64_t>(count)));
      for (int i = 0; i < n; ++i) {
        if (!cluster_.crashed(i)) continue;
        if (pick-- == 0) {
          do_restart(i);
          break;
        }
      }
      break;
    }
    case 8: {  // bounce: crash now, restart after a drawn powered-off spell
      const int budget = std::min(profile_.max_crashes, (n - 1) / 2);
      if (down_now() >= budget || cluster_.crashed(a)) break;
      const Duration downtime = Duration::micros(rng_.next_in(
          profile_.downtime_min.to_micros(), profile_.downtime_max.to_micros()));
      ++crashes_;
      pending_restarts_.insert(a);
      sim.crash(ProcessId(a));
      note("bounce p" + std::to_string(a) + " down for " +
           std::to_string(downtime.to_millis_f()) + "ms");
      sim.after(downtime, [this, a] {
        if (pending_restarts_.contains(a) && cluster_.crashed(a)) {
          do_restart(a);
        }
      });
      break;
    }
    default: {  // crash-loop: bounce the same victim repeatedly, faster than
                // its recovery round, so successive incarnations re-run
                // recovery over a half-recovered predecessor's storage.
      const int budget = std::min(profile_.max_crashes, (n - 1) / 2);
      if (down_now() >= budget || cluster_.crashed(a)) break;
      const int cycles = profile_.loop_cycles_min +
                         static_cast<int>(rng_.next_in(
                             0, profile_.loop_cycles_max -
                                    profile_.loop_cycles_min));
      ++crashes_;
      pending_restarts_.insert(a);
      sim.crash(ProcessId(a));
      note("crash-loop p" + std::to_string(a) + " cycles=" +
           std::to_string(cycles));
      schedule_loop_restart(a, cycles);
      break;
    }
  }
}

void Nemesis::schedule_loop_restart(int p, int remaining) {
  const Duration downtime = Duration::micros(
      rng_.next_in(profile_.loop_downtime_min.to_micros(),
                   profile_.loop_downtime_max.to_micros()));
  cluster_.sim().after(downtime, [this, p, remaining] {
    if (!pending_restarts_.contains(p) || !cluster_.crashed(p)) return;
    do_restart(p);
    if (remaining <= 1) return;
    const Duration uptime = Duration::micros(
        rng_.next_in(profile_.loop_uptime_min.to_micros(),
                     profile_.loop_uptime_max.to_micros()));
    cluster_.sim().after(uptime, [this, p, remaining] {
      // The window may have closed or another fault consumed the crash
      // budget while we were up: end the loop rather than exceed either.
      if (cluster_.sim().now() >= active_until_) return;
      if (cluster_.crashed(p)) return;
      const int budget =
          std::min(profile_.max_crashes, (cluster_.n() - 1) / 2);
      if (down_now() >= budget) return;
      ++crashes_;
      pending_restarts_.insert(p);
      cluster_.sim().crash(ProcessId(p));
      note("crash-loop re-crash p" + std::to_string(p));
      schedule_loop_restart(p, remaining - 1);
    });
  });
}

void Nemesis::stop_and_heal() {
  active_until_ = cluster_.sim().now();
  tick_timer_.cancel();
  sim::Simulation& sim = cluster_.sim();
  for (const auto& [from, to] : cut_links_) {
    sim.network().set_link_down(ProcessId(from), ProcessId(to), false);
  }
  cut_links_.clear();
  for (int p : isolated_) {
    sim.network().set_process_isolated(ProcessId(p), false, cluster_.n());
  }
  isolated_.clear();
  for (int p : skewed_) {
    // Zero is within epsilon/2 of real time, hence within epsilon of every
    // untouched clock; monotonicity clamping absorbs backward moves.
    sim.set_clock_offset(ProcessId(p), Duration::zero());
    // Log each restoration so a repro artifact shows when the schedule
    // stopped holding a clock off-true (the exposure window closes a drain
    // interval after this point). Fingerprints do not hash the schedule
    // log, so these lines are replay-safe.
    note("clock p" + std::to_string(p) + " offset restored to 0ms");
  }
  skewed_.clear();
  if (duplication_on_) {
    duplication_on_ = false;
    sim.network().set_pre_gst_duplicate_probability(0.0);
  }
  if (sim.network().config().gst > sim.now()) {
    sim.network().set_gst(sim.now());
  }
  // Under a power-cycling profile the outage ends here: everything still
  // down comes back up and recovers, so liveness can demand full quiescence.
  // Profiles without restart weight keep the historical crash-stop behavior
  // (and their byte-identical fingerprints).
  if (profile_.w_restart > 0 || profile_.w_bounce > 0 ||
      profile_.w_crash_loop > 0) {
    pending_restarts_.clear();
    for (int i = 0; i < cluster_.n(); ++i) {
      if (cluster_.crashed(i)) do_restart(i);
    }
  }
  note("nemesis stopped; all faults healed");
}

}  // namespace cht::chaos
