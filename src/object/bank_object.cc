#include "object/bank_object.h"

#include <numeric>

#include "common/assert.h"

namespace cht::object {

std::string BankState::fingerprint() const {
  std::string out;
  for (const auto& [account, amount] : accounts_) {
    out += account;
    out += '=';
    out += std::to_string(amount);
    out += ';';
  }
  return out;
}

Response BankObject::apply(ObjectState& state, const Operation& op) const {
  auto& bank = dynamic_cast<BankState&>(state);
  if (op.kind == "balance") {
    auto it = bank.accounts().find(op.arg);
    return std::to_string(it == bank.accounts().end() ? 0 : it->second);
  }
  if (op.kind == "total") {
    std::int64_t total = 0;
    for (const auto& [_, amount] : bank.accounts()) total += amount;
    return std::to_string(total);
  }
  if (op.kind == "deposit") {
    const std::string account = arg_field(op.arg, 0);
    const std::int64_t amount = std::stoll(arg_field(op.arg, 1));
    bank.accounts()[account] += amount;
    return std::to_string(bank.accounts()[account]);
  }
  if (op.kind == "transfer") {
    const std::string from = arg_field(op.arg, 0);
    const std::string to = arg_field(op.arg, 1);
    const std::int64_t amount = std::stoll(arg_field(op.arg, 2));
    if (bank.accounts()[from] < amount) return "insufficient";
    bank.accounts()[from] -= amount;
    bank.accounts()[to] += amount;
    return "ok";
  }
  if (op.kind == "noop") return "ok";
  CHT_UNREACHABLE("unknown bank operation");
}

bool BankObject::conflicts(const Operation& read, const Operation& rmw) const {
  if (is_no_op(rmw)) return false;
  if (read.kind == "total") {
    // Transfers preserve the total (whether they succeed or not); only
    // deposits change it. This is the paper's semantic conflict notion: the
    // read's value is unaffected by the RMW from *every* state.
    return rmw.kind == "deposit";
  }
  // balance(a): conflicts iff the RMW can touch account a.
  const std::string& account = read.arg;
  if (rmw.kind == "deposit") return arg_field(rmw.arg, 0) == account;
  if (rmw.kind == "transfer") {
    return arg_field(rmw.arg, 0) == account || arg_field(rmw.arg, 1) == account;
  }
  return true;
}

}  // namespace cht::object
