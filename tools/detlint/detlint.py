#!/usr/bin/env python3
"""detlint — determinism & protocol-hygiene static analysis for this repo.

Everything the repo claims (bit-identical `chtread_fuzz --repro`, the
metrics-determinism golden test, the delta/epsilon/GST-parameterized
guarantees) rests on the simulator being deterministic. detlint statically
rejects the ways a contributor could break that:

  D1  wall-clock      No OS/ambient time sources (std::chrono::*_clock,
                      time(), gettimeofday, clock_gettime, ...) outside the
                      allowlisted src/common/time.h. Simulated time comes
                      from sim::Clock only.
  D2  randomness      No ambient randomness (rand, srand, std::random_device,
                      std::mt19937, default_random_engine, /dev/urandom)
                      outside src/common/rng.h. All randomness flows through
                      explicitly seeded cht::Rng streams.
  D3  hash-order      No unordered_map/unordered_set declarations or
                      iteration in protocol directories (src/core, src/raft,
                      src/vr, src/leader, src/baselines, src/sim,
                      src/checker, src/chaos) unless the site carries a
                      `// detlint: order-independent (<reason>)`
                      justification. Hash iteration order is
                      implementation-defined; protocol decisions derived
                      from it are invisible nondeterminism.
  D4  pointer-order   No ordered containers keyed on raw pointers
                      (std::map<T*, ...>, std::set<T*>, pointer-keyed
                      priority_queue). Pointer order is allocation order —
                      nondeterministic across runs.
  D5  uninit-fields   Every scalar field of message/event/config structs in
                      the wire-format files (src/core/messages.h,
                      src/sim/message.h, src/raft/raft.h, src/vr/vr.h,
                      src/core/config.h, src/chaos/spec.h) must carry a
                      member initializer. An uninitialized field in a
                      message struct is frame-garbage nondeterminism.
  D6  threading       No std::thread/atomics/mutexes outside the parallel
                      seed sweeper (src/chaos/sweep.cc) and bench/. The
                      simulator itself is single-threaded by construction.
  D7  file-io         No direct file I/O (std::fstream family, fopen/freopen,
                      POSIX open/openat/creat, <fstream>/<cstdio> includes)
                      in protocol directories. Durable state must go through
                      the simulated sim::StableStorage so crash/loss/tearing
                      semantics apply; a real file would silently survive
                      simulated power cycles. src/chaos/sweep.cc (repro
                      artifact reader/writer) is the allowlisted exception.

Suppression grammar (see docs/STATIC_ANALYSIS.md):
    // detlint: allow(D<k>) <reason>
    // detlint: order-independent (<reason>)     [sugar for allow(D3)]
A suppression applies to its own line, or — when it is the only thing on the
line — to the next line. The reason is mandatory.

Engines:
  --engine=regex   Pure-Python lexer + pattern pass (always available; the
                   engine CI gates on, so CI never hard-depends on libclang).
  --engine=clang   libclang (clang Python bindings) AST pass for D1/D2/D3/D6
                   call/type resolution; D4/D5 always run through the regex
                   pass. Falls back to regex with a notice if the bindings
                   are missing.
  --engine=auto    clang if importable, else regex (default: regex, so runs
                   are byte-stable across machines).

Usage:
    detlint.py [--root DIR] [--engine=regex|clang|auto] [--json[=PATH]]
               [--selftest] [--list-rules] [files...]

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.
"""

import argparse
import json
import os
import re
import sys

VERSION = 1

# Directories scanned relative to the repo root (files... overrides).
SCAN_ROOTS = ("src", "tools", "bench", "examples")
# detlint's own tree (including fixtures, which are violations on purpose).
EXCLUDE_PREFIXES = ("tools/detlint",)
CPP_SUFFIXES = (".h", ".cc", ".cpp", ".hpp")

# Protocol directories where hash-iteration order can reach protocol
# decisions, verdicts, or the event schedule (rule D3).
PROTOCOL_DIRS = (
    "src/core", "src/raft", "src/vr", "src/leader", "src/baselines",
    "src/sim", "src/checker", "src/chaos", "src/client",
)

# Wire-format / spec files whose structs rule D5 audits.
D5_FILES = (
    "src/core/messages.h", "src/sim/message.h", "src/raft/raft.h",
    "src/vr/vr.h", "src/core/config.h", "src/chaos/spec.h",
    "src/client/wire.h",
)

ALLOWLIST = {
    "D1": ("src/common/time.h",),
    "D2": ("src/common/rng.h",),
    "D3": (),
    "D4": (),
    "D5": (),
    "D6": ("src/chaos/sweep.cc", "bench/"),
    "D7": ("src/chaos/sweep.cc",),
}

RULES = {
    "D1": "wall-clock or OS time source outside src/common/time.h",
    "D2": "ambient randomness outside src/common/rng.h",
    "D3": "unordered container in a protocol directory without an "
          "order-independence justification",
    "D4": "ordered container keyed on a raw pointer (allocation-order "
          "nondeterminism)",
    "D5": "scalar field of a wire-format struct without a member initializer",
    "D6": "std::thread/atomic/mutex outside src/chaos/sweep.cc and bench/",
    "D7": "direct file I/O in a protocol directory (bypasses the simulated "
          "stable storage)",
}

SUGGESTIONS = {
    "D1": "route through sim::Clock / cht::LocalTime (src/common/time.h); "
          "simulated components must never read the host clock",
    "D2": "take an explicitly seeded cht::Rng (src/common/rng.h), or derive "
          "a stream with Rng::split() / chaos::derive_seed()",
    "D3": "use std::map/std::set, iterate a sorted copy, or append "
          "'// detlint: order-independent (<why order cannot matter>)'",
    "D4": "key on a stable id (ProcessId, OperationId, sequence number) "
          "instead of the object's address",
    "D5": "add a member initializer ('= 0', '= false', '{}') so a "
          "default-constructed message has no indeterminate bits",
    "D6": "keep simulated code single-threaded; parallelism belongs in the "
          "seed sweeper (src/chaos/sweep.cc) or bench/ harnesses",
    "D7": "persist through sim::StableStorage (src/sim/storage.h) so writes "
          "participate in simulated crash/loss semantics; host files are "
          "invisible to the power-cycle nemesis",
}


class Finding:
    def __init__(self, rule, path, line, snippet, message=None):
        self.rule = rule
        self.path = path
        self.line = line
        self.snippet = snippet.strip()
        self.message = message or RULES[rule]
        self.suggestion = SUGGESTIONS[rule]

    def key(self):
        return (self.path, self.line, self.rule)

    def to_json(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "snippet": self.snippet,
            "message": self.message,
            "suggestion": self.suggestion,
        }


# --- Lexing -------------------------------------------------------------------

def strip_lines(text):
    """Split a C++ source into per-line (code, comment) pairs.

    String/char literals are blanked in `code` (their quotes kept), comments
    removed from `code` and accumulated into `comment`. Handles multi-line
    /* */ comments; raw strings are not used in this codebase and are
    treated as ordinary literals.
    """
    out = []
    in_block = False
    for raw in text.splitlines():
        code = []
        comment = []
        i, n = 0, len(raw)
        while i < n:
            c = raw[i]
            if in_block:
                end = raw.find("*/", i)
                if end < 0:
                    comment.append(raw[i:])
                    i = n
                else:
                    comment.append(raw[i:end])
                    i = end + 2
                    in_block = False
                continue
            if c == "/" and i + 1 < n and raw[i + 1] == "/":
                comment.append(raw[i + 2:])
                i = n
                continue
            if c == "/" and i + 1 < n and raw[i + 1] == "*":
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                code.append(quote)
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        code.append(quote)
                        i += 1
                        break
                    i += 1
                continue
            code.append(c)
            i += 1
        out.append(("".join(code), " ".join(comment).strip()))
    return out


SUPPRESS_RE = re.compile(
    r"detlint:\s*(?:allow\((D[1-7])\)\s*(\S.*)?|order-independent\s*(\(.+\))?)")


def suppressions(comment):
    """Rules suppressed by this comment; None-reason suppressions are invalid
    (the justification grammar requires a reason) and are ignored."""
    rules = set()
    for m in SUPPRESS_RE.finditer(comment):
        if m.group(1):                       # allow(Dk) reason
            if m.group(2):
                rules.add(m.group(1))
        elif m.group(3):                     # order-independent (reason)
            rules.add("D3")
    return rules


# --- Regex engine -------------------------------------------------------------

D1_PATTERNS = [
    re.compile(r"std::chrono::\w*_clock\b"),
    re.compile(r"\bchrono::\w*_clock\b"),
    re.compile(r"\bgettimeofday\s*\("),
    re.compile(r"\bclock_gettime\s*\("),
    re.compile(r"(?<![\w:.>])clock\s*\(\s*\)"),
    re.compile(r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0|&\w+|\))"),
    re.compile(r"\b(?:localtime|gmtime|mktime)\s*\("),
]

D2_PATTERNS = [
    re.compile(r"\bstd::random_device\b"),
    re.compile(r"\bstd::mt19937(?:_64)?\b"),
    re.compile(r"\bstd::default_random_engine\b"),
    re.compile(r"\bstd::minstd_rand0?\b"),
    re.compile(r"\bstd::ranlux\w+\b"),
    re.compile(r"(?<![\w:.])s?rand\s*\("),
    re.compile(r"\barc4random\w*\s*\("),
    re.compile(r"\bgetentropy\s*\("),
]
D2_RAW_PATTERNS = [re.compile(r"/dev/u?random")]

D4_PATTERNS = [
    re.compile(r"std::(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*"),
    re.compile(r"std::priority_queue\s*<\s*(?:const\s+)?[\w:]+\s*\*"),
]

# D7 — direct file I/O in protocol directories (rule scope applied at the
# scan site: only PROTOCOL_DIRS files are checked). The bare open/openat/
# creat pattern deliberately excludes member calls (`file.open(...)`,
# `is_open()`) and qualified names via the lookbehind.
D7_PATTERNS = [
    re.compile(r"\bstd::(?:basic_)?[io]?fstream\b"),
    re.compile(r"\bf(?:re)?open\s*\("),
    re.compile(r"(?<![\w:.>])(?:open|openat|creat)\s*\("),
    re.compile(r"#\s*include\s*<(?:fstream|cstdio|stdio\.h|fcntl\.h)>"),
]

D6_PATTERNS = [
    re.compile(r"\bstd::(?:jthread|thread)\b"),
    re.compile(r"\bstd::atomic\b|\bstd::atomic_\w+\b"),
    re.compile(r"\bstd::(?:shared_|recursive_)?mutex\b"),
    re.compile(r"\bstd::condition_variable\b"),
    re.compile(r"\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"),
    re.compile(r"\bstd::(?:async|future|promise|packaged_task)\b"),
    re.compile(r"#\s*include\s*<(?:thread|atomic|mutex|condition_variable|"
               r"future|shared_mutex|semaphore|barrier|latch)>"),
]

UNORDERED_DECL_RE = re.compile(
    r"(?:std::)?unordered_(?:map|set|multimap|multiset)\s*<")
# `... > name ;|=|{` — the declared variable at the end of an unordered decl.
UNORDERED_NAME_RE = re.compile(r">\s*(\w+)\s*(?:;|=|\{)")
UNORDERED_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*(?:std::)?unordered_(?:map|set)")

# D5 scalar field types that have indeterminate values unless initialized.
D5_SCALAR = (
    r"(?:std::)?u?int(?:8|16|32|64|ptr)?_t|(?:std::)?size_t|"
    r"(?:unsigned\s+)?(?:long\s+long|long|int|short|char)|unsigned|"
    r"bool|float|double|BatchNumber"
)
D5_FIELD_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?P<type>(?:" + D5_SCALAR + r")(?:\s*\*)?)\s+"
    r"(?P<name>\w+)\s*(?P<init>;|=|\{)")
STRUCT_OPEN_RE = re.compile(r"^\s*(?:struct|class)\s+(\w+)[^;]*\{")


def rel_in(path, prefixes):
    return any(path == p or path.startswith(p.rstrip("/") + "/")
               for p in prefixes)


def allowlisted(rule, path):
    return rel_in(path, ALLOWLIST[rule])


def scan_file_regex(path, text):
    """Run all six rules over one file. `path` is root-relative."""
    findings = []
    lines = strip_lines(text)
    raw_lines = text.splitlines()

    # Suppressions: own line, plus carry-over from a pure-comment line.
    active = []
    carried = set()
    for code, comment in lines:
        own = suppressions(comment)
        effective = own | carried
        carried = own if not code.strip() else set()
        active.append(effective)

    def emit(rule, lineno, message=None):
        if allowlisted(rule, path):
            return
        if rule in active[lineno]:
            return
        findings.append(Finding(rule, path, lineno + 1,
                                raw_lines[lineno], message))

    in_protocol_dir = rel_in(path, PROTOCOL_DIRS)

    # Pass 1: collect unordered-typed names (declarations and aliases).
    unordered_names = set()
    unordered_aliases = set()
    for idx, (code, _) in enumerate(lines):
        m = UNORDERED_ALIAS_RE.search(code)
        if m:
            unordered_aliases.add(m.group(1))
        if UNORDERED_DECL_RE.search(code):
            m = UNORDERED_NAME_RE.search(code)
            if m:
                unordered_names.add(m.group(1))
        for alias in unordered_aliases:
            m = re.search(r"\b" + re.escape(alias) + r"\s+(\w+)\s*(?:;|=|\{)",
                          code)
            if m:
                unordered_names.add(m.group(1))

    # Pass 2: per-line rules.
    for idx, (code, _) in enumerate(lines):
        raw = raw_lines[idx]
        for pattern in D1_PATTERNS:
            if pattern.search(code):
                emit("D1", idx)
                break
        hit_d2 = any(p.search(code) for p in D2_PATTERNS) or \
            any(p.search(raw) for p in D2_RAW_PATTERNS)
        if hit_d2:
            emit("D2", idx)
        if in_protocol_dir:
            if UNORDERED_DECL_RE.search(code) or \
                    UNORDERED_ALIAS_RE.search(code):
                emit("D3", idx,
                     "unordered container declared in a protocol directory "
                     "without an order-independence justification")
            else:
                for name in unordered_names:
                    esc = re.escape(name)
                    if re.search(r"for\s*\([^;)]*:\s*" + esc + r"\s*\)", code) \
                            or re.search(r"\b" + esc + r"\s*\.\s*c?begin\s*\(",
                                         code):
                        emit("D3", idx,
                             "iteration over unordered container '%s' "
                             "(hash order is implementation-defined)" % name)
                        break
        for pattern in D4_PATTERNS:
            if pattern.search(code):
                emit("D4", idx)
                break
        for pattern in D6_PATTERNS:
            if pattern.search(code):
                emit("D6", idx)
                break
        if in_protocol_dir:
            for pattern in D7_PATTERNS:
                if pattern.search(code):
                    emit("D7", idx)
                    break

    # Pass 3: D5 struct-field audit (configured files only).
    if path in D5_FILES:
        depth = 0
        struct_depth = []  # brace depth at which each open struct's body sits
        for idx, (code, _) in enumerate(lines):
            opens_struct = STRUCT_OPEN_RE.search(code)
            if opens_struct:
                struct_depth.append(depth + 1)
            if struct_depth and depth == struct_depth[-1] and "(" not in code:
                m = D5_FIELD_RE.search(code)
                if m and m.group("init") == ";":
                    emit("D5", idx,
                         "field '%s %s' of a wire-format struct has no "
                         "member initializer" % (m.group("type").strip(),
                                                 m.group("name")))
            depth += code.count("{") - code.count("}")
            while struct_depth and depth < struct_depth[-1]:
                struct_depth.pop()
    return findings


# --- Clang engine (optional) --------------------------------------------------

def scan_files_clang(root, paths):
    """AST-based pass for D1/D2/D3/D6 via the clang Python bindings; D4/D5
    stay on the regex pass (type-pattern and field-initializer rules are
    line-shaped anyway). Returns None if libclang is unavailable so the
    caller can fall back."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
    except Exception:  # missing libclang.so despite bindings
        return None

    banned_calls = {
        "gettimeofday": "D1", "clock_gettime": "D1", "time": "D1",
        "clock": "D1", "localtime": "D1", "gmtime": "D1", "mktime": "D1",
        "rand": "D2", "srand": "D2", "arc4random": "D2", "getentropy": "D2",
    }
    banned_types = {
        "std::random_device": "D2", "std::mt19937": "D2",
        "std::mt19937_64": "D2", "std::default_random_engine": "D2",
        "std::thread": "D6", "std::jthread": "D6", "std::mutex": "D6",
        "std::condition_variable": "D6", "std::atomic": "D6",
    }
    findings = []
    args = ["-std=c++20", "-I" + os.path.join(root, "src"),
            "-I" + os.path.join(root, "bench")]
    for path in paths:
        full = os.path.join(root, path)
        try:
            tu = index.parse(full, args=args)
        except cindex.TranslationUnitLoadError:
            continue
        for cursor in tu.cursor.walk_preorder():
            loc = cursor.location
            if not loc.file or os.path.abspath(loc.file.name) != \
                    os.path.abspath(full):
                continue
            rule = None
            if cursor.kind == cindex.CursorKind.CALL_EXPR and \
                    cursor.spelling in banned_calls:
                rule = banned_calls[cursor.spelling]
            elif cursor.kind in (cindex.CursorKind.VAR_DECL,
                                 cindex.CursorKind.FIELD_DECL):
                type_name = cursor.type.get_canonical().spelling
                for banned, r in banned_types.items():
                    if type_name.startswith(banned):
                        rule = r
                        break
                if rule is None and rel_in(path, PROTOCOL_DIRS) and \
                        "unordered_map" in type_name or \
                        "unordered_set" in type_name:
                    rule = "D3"
            elif cursor.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(cursor.get_children())
                if children:
                    range_type = children[-2].type.get_canonical().spelling \
                        if len(children) >= 2 else ""
                    if rel_in(path, PROTOCOL_DIRS) and (
                            "unordered_map" in range_type or
                            "unordered_set" in range_type):
                        rule = "D3"
            if rule and not allowlisted(rule, path):
                with open(full, "r", encoding="utf-8", errors="replace") as f:
                    raw = f.read().splitlines()
                lineno = loc.line
                comment = raw[lineno - 1] if lineno <= len(raw) else ""
                prev = raw[lineno - 2] if lineno >= 2 else ""
                if rule in suppressions(comment) | suppressions(prev):
                    continue
                snippet = raw[lineno - 1] if lineno <= len(raw) else ""
                findings.append(Finding(rule, path, lineno, snippet))
    return findings


# --- Driver -------------------------------------------------------------------

def collect_files(root, explicit):
    if explicit:
        paths = []
        for p in explicit:
            rel = os.path.relpath(os.path.abspath(p), root)
            paths.append(rel.replace(os.sep, "/"))
        return sorted(paths)
    paths = []
    for scan_root in SCAN_ROOTS:
        base = os.path.join(root, scan_root)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(CPP_SUFFIXES):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                rel = rel.replace(os.sep, "/")
                if rel_in(rel, EXCLUDE_PREFIXES):
                    continue
                paths.append(rel)
    return paths


def run_scan(root, files, engine):
    """Returns (findings, engine_used)."""
    findings = []
    engine_used = "regex"
    clang_findings = None
    if engine in ("clang", "auto"):
        clang_findings = scan_files_clang(root, files)
        if clang_findings is None:
            if engine == "clang":
                sys.stderr.write(
                    "detlint: clang python bindings unavailable; "
                    "falling back to --engine=regex\n")
        else:
            engine_used = "clang+regex"
    for path in files:
        full = os.path.join(root, path)
        try:
            with open(full, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            sys.stderr.write("detlint: cannot read %s: %s\n" % (path, e))
            continue
        file_findings = scan_file_regex(path, text)
        if clang_findings is not None:
            # The AST pass owns D1/D2/D3/D6 for files it parsed; keep the
            # regex results for D4/D5 and merge, deduplicating by site.
            file_findings = [f for f in file_findings
                             if f.rule in ("D4", "D5")]
            file_findings += [f for f in clang_findings if f.path == path]
            seen = set()
            deduped = []
            for f in sorted(file_findings, key=Finding.key):
                if f.key() not in seen:
                    seen.add(f.key())
                    deduped.append(f)
            file_findings = deduped
        findings.extend(file_findings)
    findings.sort(key=Finding.key)
    return findings, engine_used


def report(findings, engine_used, json_out):
    doc = {
        "tool": "detlint",
        "version": VERSION,
        "engine": engine_used,
        "counts": {},
        "findings": [f.to_json() for f in findings],
    }
    for f in findings:
        doc["counts"][f.rule] = doc["counts"].get(f.rule, 0) + 1
    if json_out is not None:
        text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        if json_out == "-":
            sys.stdout.write(text)
        else:
            with open(json_out, "w", encoding="utf-8") as f:
                f.write(text)
    if json_out != "-":
        for f in findings:
            print("%s:%d: [%s] %s" % (f.path, f.line, f.rule, f.message))
            print("    %s" % f.snippet)
            print("    fix: %s" % f.suggestion)
        summary = ", ".join("%s=%d" % (r, n)
                            for r, n in sorted(doc["counts"].items()))
        print("detlint (%s): %d finding(s)%s" %
              (engine_used, len(findings),
               (" [" + summary + "]") if summary else ""))


# --- Self-test ----------------------------------------------------------------

EXPECT_RE = re.compile(r"detlint-expect:\s*((?:D[1-7])(?:\s*,\s*D[1-7])*)")


def selftest(tool_dir):
    """Scan the fixture corpus and require findings to match the
    `// detlint-expect: Dk` markers exactly — every seeded violation caught,
    no false positives on the negative cases."""
    corpus = os.path.join(tool_dir, "fixtures", "corpus")
    if not os.path.isdir(corpus):
        sys.stderr.write("detlint --selftest: missing fixture corpus at %s\n"
                         % corpus)
        return 2
    files = collect_files(corpus, None)
    expected = set()
    for path in files:
        with open(os.path.join(corpus, path), encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                m = EXPECT_RE.search(line)
                if m:
                    for rule in re.split(r"\s*,\s*", m.group(1)):
                        expected.add((path, lineno, rule))
    findings, _ = run_scan(corpus, files, "regex")
    found = {f.key() for f in findings}
    missed = sorted(expected - found)
    surprise = sorted(found - expected)
    for path, line, rule in missed:
        print("MISSED  %s:%d expected %s not reported" % (path, line, rule))
    for path, line, rule in surprise:
        print("EXTRA   %s:%d unexpected %s finding" % (path, line, rule))
    rules_seen = {rule for (_, _, rule) in expected}
    missing_rules = sorted(set(RULES) - rules_seen)
    if missing_rules:
        print("CORPUS  no positive fixture for rule(s): %s"
              % ", ".join(missing_rules))
    ok = not missed and not surprise and not missing_rules
    print("detlint selftest: %s (%d expected findings across %d files)"
          % ("PASS" if ok else "FAIL", len(expected), len(files)))
    return 0 if ok else 1


def main(argv):
    parser = argparse.ArgumentParser(prog="detlint", add_help=True)
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this file)")
    parser.add_argument("--engine", choices=("regex", "clang", "auto"),
                        default="regex")
    parser.add_argument("--json", nargs="?", const="-", default=None,
                        metavar="PATH", help="machine-readable output "
                        "(to stdout with no PATH)")
    parser.add_argument("--selftest", action="store_true",
                        help="check the rules against the fixture corpus")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("files", nargs="*")
    args = parser.parse_args(argv)

    tool_dir = os.path.dirname(os.path.abspath(__file__))
    if args.list_rules:
        for rule in sorted(RULES):
            print("%s  %s" % (rule, RULES[rule]))
            print("    fix: %s" % SUGGESTIONS[rule])
        return 0
    if args.selftest:
        return selftest(tool_dir)

    root = args.root or os.path.dirname(os.path.dirname(tool_dir))
    root = os.path.abspath(root)
    files = collect_files(root, args.files or None)
    findings, engine_used = run_scan(root, files, args.engine)
    report(findings, engine_used, args.json)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
