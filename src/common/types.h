// Core identifier types shared across all modules.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace cht {

// Identifies one of the n replica processes. Dense in [0, n).
class ProcessId {
 public:
  constexpr ProcessId() = default;
  constexpr explicit ProcessId(int index) : index_(index) {}
  constexpr int index() const { return index_; }
  constexpr bool valid() const { return index_ >= 0; }
  static constexpr ProcessId invalid() { return ProcessId(); }

  constexpr auto operator<=>(const ProcessId&) const = default;
  friend std::ostream& operator<<(std::ostream& os, ProcessId p) {
    return os << "p" << p.index_;
  }

 private:
  int index_ = -1;
};

// Unique identifier of a client-issued operation: (issuing process, counter).
struct OperationId {
  ProcessId process;
  std::int64_t seq = 0;

  constexpr auto operator<=>(const OperationId&) const = default;
  friend std::ostream& operator<<(std::ostream& os, const OperationId& id) {
    return os << id.process << "#" << id.seq;
  }
};

// 1-based sequence number of a committed batch; 0 means "before any batch".
using BatchNumber = std::int64_t;

}  // namespace cht

template <>
struct std::hash<cht::ProcessId> {
  std::size_t operator()(cht::ProcessId p) const noexcept {
    return std::hash<int>{}(p.index());
  }
};

template <>
struct std::hash<cht::OperationId> {
  std::size_t operator()(const cht::OperationId& id) const noexcept {
    return std::hash<int>{}(id.process.index()) * 1000003u ^
           std::hash<std::int64_t>{}(id.seq);
  }
};
