#include "harness/raft_cluster.h"

namespace cht::harness {

RaftCluster::RaftCluster(ClusterConfig config,
                         std::shared_ptr<const object::ObjectModel> model,
                         raft::ReadMode read_mode)
    : config_(config),
      model_(std::move(model)),
      raft_config_(raft::RaftConfig::defaults_for(config.delta)),
      sim_(config.to_sim_config()),
      clients_(sim_) {
  raft_config_.read_mode = read_mode;
  raft_config_.clock_guard =
      core::ClockGuardConfig::defaults_for(config.delta, config.epsilon);
  raft_config_.clock_guard.enabled = config_.clock_guard;
  for (int i = 0; i < config_.n; ++i) {
    sim_.add_process(
        std::make_unique<raft::RaftReplica>(model_, raft_config_));
  }
  clients_.populate(config_);
  sim_.start();
}

void RaftCluster::submit(int i, object::Operation op) {
  ++submitted_;
  if (clients_.enabled()) {
    client::Client& via = clients_.for_slot(i);
    const bool is_read = model_->is_read(op);
    // Invocation recorded at dispatch, not enqueue — see Cluster::submit.
    const auto token = std::make_shared<checker::HistoryRecorder::Token>();
    const ProcessId pid = via.id();
    object::Operation recorded = op;  // hook's copy; `op` moves into submit
    via.submit(
        std::move(op), is_read,
        [this, token](const OperationId&, const std::string& response) {
          history_.end(*token, response, sim_.now());
          ++completed_;
        },
        [this, token, pid, is_read,
         recorded = std::move(recorded)](const OperationId& cid) {
          *token = history_.begin(pid, recorded, sim_.now());
          if (!is_read) history_.set_id(*token, cid);
        });
    return;
  }
  raft::RaftReplica& target = replica(i);
  const auto token = history_.begin(ProcessId(i), op, sim_.now());
  auto callback = [this, token](const object::Response& response) {
    history_.end(token, response, sim_.now());
    ++completed_;
  };
  if (model_->is_read(op)) {
    target.submit_read(std::move(op), std::move(callback));
  } else {
    history_.set_id(token,
                    target.submit_rmw(std::move(op), std::move(callback)));
  }
}

void RaftCluster::merge_metrics_into(metrics::Registry& out) {
  for (int i = 0; i < config_.n; ++i) {
    out.merge_from(replica(i).metrics());
    out.add("fsyncs", sim_.storage(ProcessId(i)).fsyncs());
    out.add("sync_stall_us", sim_.storage(ProcessId(i)).sync_stall_us());
    metrics::Histogram& widths = out.histogram("storage.flush_width");
    for (const auto& [width, count] : sim_.storage(ProcessId(i)).flush_widths()) {
      for (std::int64_t c = 0; c < count; ++c) {
        widths.record(static_cast<std::int64_t>(width));
      }
    }
  }
  clients_.merge_metrics_into(out);
}

void RaftCluster::restart(int i) {
  sim_.restart(ProcessId(i),
               std::make_unique<raft::RaftReplica>(model_, raft_config_));
}

bool RaftCluster::await_quiesce(Duration timeout) {
  const RealTime deadline = sim_.now() + timeout;
  return sim_.run_until([this] { return completed_ == submitted_; }, deadline);
}

int RaftCluster::leader() {
  int found = -1;
  std::int64_t best_term = -1;
  for (int i = 0; i < config_.n; ++i) {
    auto& r = replica(i);
    if (!r.crashed() && r.role() == raft::RaftReplica::Role::kLeader &&
        r.term() > best_term) {
      best_term = r.term();
      found = i;
    }
  }
  return found;
}

bool RaftCluster::await_leader(Duration timeout) {
  const RealTime deadline = sim_.now() + timeout;
  return sim_.run_until([this] { return leader() >= 0; }, deadline);
}

}  // namespace cht::harness
