#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <new>
#include <sstream>

#include "metrics/json.h"
#include "metrics/registry.h"
#include "metrics/span.h"
#include "metrics/stats.h"
#include "metrics/table.h"

// Global allocation counter for the disabled-record-path test. Overriding
// the global operators in this test binary lets us assert "zero allocations"
// rather than merely "no observable state change".
static std::size_t g_allocations = 0;

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cht::metrics {
namespace {

TEST(LatencyRecorderTest, OrderStatistics) {
  LatencyRecorder r;
  for (int i = 1; i <= 100; ++i) r.record(Duration::micros(i));
  EXPECT_EQ(r.count(), 100u);
  EXPECT_EQ(r.min(), Duration::micros(1));
  EXPECT_EQ(r.max(), Duration::micros(100));
  EXPECT_EQ(r.mean(), Duration::micros(50));  // 5050/100 truncated
  EXPECT_EQ(r.p50(), Duration::micros(51));   // nearest rank: sorted[50]
  EXPECT_EQ(r.p99(), Duration::micros(99));
  EXPECT_EQ(r.percentile(0.0), Duration::micros(1));
  EXPECT_EQ(r.percentile(1.0), Duration::micros(100));
}

TEST(LatencyRecorderTest, SingleSample) {
  LatencyRecorder r;
  r.record(Duration::millis(7));
  EXPECT_EQ(r.p50(), Duration::millis(7));
  EXPECT_EQ(r.min(), r.max());
}

TEST(LatencyRecorderTest, ClearResets) {
  LatencyRecorder r;
  r.record(Duration::millis(1));
  r.clear();
  EXPECT_TRUE(r.empty());
}

TEST(LatencyRecorderTest, UnsortedInput) {
  LatencyRecorder r;
  for (int v : {30, 10, 20}) r.record(Duration::micros(v));
  EXPECT_EQ(r.min(), Duration::micros(10));
  EXPECT_EQ(r.p50(), Duration::micros(20));
  EXPECT_EQ(r.max(), Duration::micros(30));
}

TEST(TableTest, AlignsColumns) {
  Table table({"a", "long-header"});
  table.add_row({"xxxxx", "1"});
  table.add_row({"y", "22"});
  std::ostringstream os;
  table.print(os);
  const std::string expected =
      "| a     | long-header |\n"
      "|-------|-------------|\n"
      "| xxxxx | 1           |\n"
      "| y     | 22          |\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(TableTest, MissingCellsRenderEmpty) {
  Table table({"a", "b"});
  table.add_row({"only-one"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("| only-one | "), std::string::npos);
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(42)), "42");
}

TEST(HistogramTest, BucketingExactBelowSubBucketCount) {
  for (std::int64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_of(v), v);
    EXPECT_EQ(Histogram::bucket_lower(static_cast<int>(v)), v);
    EXPECT_EQ(Histogram::bucket_upper(static_cast<int>(v)), v);
  }
}

TEST(HistogramTest, BucketingLogScale) {
  // 1000 has msb 9 (512); sub-bucket (1000 >> 7) & 3 == 3, so bucket
  // (9-2)*4 + 4 + 3 == 35, spanning [896, 1023].
  EXPECT_EQ(Histogram::bucket_of(1000), 35);
  EXPECT_EQ(Histogram::bucket_lower(35), 896);
  EXPECT_EQ(Histogram::bucket_upper(35), 1023);
  // Every value lies within its own bucket's bounds; buckets are <= 25%
  // relative error wide.
  for (std::int64_t v : {std::int64_t{4}, std::int64_t{5}, std::int64_t{7},
                         std::int64_t{8}, std::int64_t{1023},
                         std::int64_t{1024}, std::int64_t{123456789},
                         std::numeric_limits<std::int64_t>::max()}) {
    const int b = Histogram::bucket_of(v);
    EXPECT_GE(b, 0);
    EXPECT_LT(b, Histogram::kBuckets);
    EXPECT_LE(Histogram::bucket_lower(b), v);
    EXPECT_GE(Histogram::bucket_upper(b), v);
  }
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<std::int64_t>::max()),
            Histogram::kBuckets - 1);
}

TEST(HistogramTest, PercentileEdges) {
  Registry registry;
  auto& h = registry.histogram("h_us");
  // Empty: everything reports zero.
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.percentile(0.5), 0);
  for (int v = 1; v <= 100; ++v) h.record(v);
  // q == 0 is the exact min, q == 1 the exact max (not bucket bounds).
  EXPECT_EQ(h.percentile(0.0), 1);
  EXPECT_EQ(h.percentile(1.0), 100);
  // Interior percentiles land within bucket resolution of the exact rank,
  // and never outside the observed range.
  EXPECT_GE(h.p50(), 50);
  EXPECT_LE(h.p50(), 63);  // bucket [48,63] holds rank 50
  EXPECT_LE(h.p99(), 100);
  EXPECT_GE(h.p99(), 96);
  EXPECT_EQ(h.mean(), 50);  // 5050/100 truncated
}

TEST(HistogramTest, SingleSampleAndNegativeClamp) {
  Registry registry;
  auto& h = registry.histogram("h_us");
  h.record(-5);  // clamped to 0
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.percentile(0.5), 0);
}

TEST(HistogramTest, MergePreservesMoments) {
  Registry a, b;
  auto& ha = a.histogram("h_us");
  auto& hb = b.histogram("h_us");
  for (int v = 1; v <= 50; ++v) ha.record(v);
  for (int v = 51; v <= 100; ++v) hb.record(v);
  ha.merge_from(hb);
  EXPECT_EQ(ha.count(), 100);
  EXPECT_EQ(ha.sum(), 5050);
  EXPECT_EQ(ha.min(), 1);
  EXPECT_EQ(ha.max(), 100);
  EXPECT_EQ(ha.percentile(0.0), 1);
  EXPECT_EQ(ha.percentile(1.0), 100);
  // Merging an empty histogram is a no-op.
  Registry c;
  ha.merge_from(c.histogram("h_us"));
  EXPECT_EQ(ha.count(), 100);
  EXPECT_EQ(ha.min(), 1);
}

TEST(RegistryTest, MergeCreatesMissingEntries) {
  Registry a, b;
  a.counter("shared").inc(2);
  b.counter("shared").inc(3);
  b.counter("only_b").inc(7);
  b.gauge("depth").set(4);
  b.histogram("h_us").record(10);
  a.merge_from(b);
  EXPECT_EQ(a.value("shared"), 5);
  EXPECT_EQ(a.value("only_b"), 7);
  EXPECT_EQ(a.value("depth"), 4);
  ASSERT_NE(a.find_histogram("h_us"), nullptr);
  EXPECT_EQ(a.find_histogram("h_us")->count(), 1);
  // Lookups of unknown names are zero/null, not errors.
  EXPECT_EQ(a.value("never_registered"), 0);
  EXPECT_EQ(a.find_histogram("never_registered"), nullptr);
}

TEST(RegistryTest, DisabledRecordPathIsInertAndAllocationFree) {
  Registry registry(/*enabled=*/false);
  // Registration may allocate (handles are obtained once, at setup time).
  auto& counter = registry.counter("c");
  auto& gauge = registry.gauge("g");
  auto& histogram = registry.histogram("h_us");
  const std::size_t allocations_before = g_allocations;
  for (int i = 0; i < 10000; ++i) {
    counter.inc();
    gauge.set(i);
    histogram.record(i);
  }
  const std::size_t allocations_after = g_allocations;
  EXPECT_EQ(allocations_after, allocations_before)
      << "disabled record path must not allocate";
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(histogram.count(), 0);
}

TEST(RegistryTest, EnabledRecordPathIsAllocationFree) {
  Registry registry;
  auto& counter = registry.counter("c");
  auto& histogram = registry.histogram("h_us");
  // Warm up so that lazily-allocated internals (none expected) exist.
  counter.inc();
  histogram.record(1);
  const std::size_t allocations_before = g_allocations;
  for (int i = 0; i < 10000; ++i) {
    counter.inc();
    histogram.record(i);
  }
  EXPECT_EQ(g_allocations, allocations_before)
      << "hot record path must not allocate";
  EXPECT_EQ(counter.value(), 10001);
}

TEST(SpanTest, ManualLifecycle) {
  Registry registry;
  auto& h = registry.histogram("span.test_us");
  Span span(&h);
  // Ending an un-begun span records nothing.
  EXPECT_EQ(span.end(100), -1);
  EXPECT_EQ(h.count(), 0);
  span.begin(100);
  EXPECT_TRUE(span.active());
  EXPECT_EQ(span.end(250), 150);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.max(), 150);
  // Cancel disarms without recording.
  span.begin(300);
  span.cancel();
  EXPECT_EQ(span.end(400), -1);
  EXPECT_EQ(h.count(), 1);
  // Re-arming an active span restarts it.
  span.begin(500);
  span.begin(600);
  EXPECT_EQ(span.end(650), 50);
}

TEST(SpanTest, ScopedSpansNest) {
  Registry registry;
  auto& outer = registry.histogram("span.outer_us");
  auto& inner = registry.histogram("span.inner_us");
  std::int64_t clock = 0;
  {
    ScopedSpan outer_span(outer, &clock);
    clock += 10;
    {
      ScopedSpan inner_span(inner, &clock);
      clock += 5;
    }
    clock += 10;
  }
  EXPECT_EQ(inner.count(), 1);
  EXPECT_EQ(inner.max(), 5);
  EXPECT_EQ(outer.count(), 1);
  EXPECT_EQ(outer.max(), 25);
}

TEST(JsonTest, DeterministicInsertionOrderedOutput) {
  auto obj = json::Value::object();
  obj.set("z", 1);
  obj.set("a", json::Value("text\"with\\escapes\n"));
  obj.set("z", 2);  // overwrite in place, order preserved
  auto arr = json::Value::array();
  arr.push(true).push(3.5).push(json::Value());
  obj.set("list", std::move(arr));
  EXPECT_EQ(obj.dump(0),
            "{\"z\": 2,\"a\": \"text\\\"with\\\\escapes\\n\","
            "\"list\": [true,3.5,null]}");
}

TEST(JsonTest, HistogramExportShape) {
  Registry registry;
  auto& h = registry.histogram("h_us");
  h.record(1);
  h.record(1000);
  const auto v = histogram_to_json(h);
  ASSERT_NE(v.find("count"), nullptr);
  ASSERT_NE(v.find("p50"), nullptr);
  ASSERT_NE(v.find("p99"), nullptr);
  ASSERT_NE(v.find("buckets"), nullptr);
  EXPECT_EQ(v.find("buckets")->size(), 2u);  // only non-empty buckets listed
}

}  // namespace
}  // namespace cht::metrics
