// The Section-5 mechanism variants: leader-forwarded reads, conflict-blind
// blocking, all-ack commits, Spanner-style commit wait — and the
// deliberately unsafe local read used by the lower-bound demonstration.
#include <gtest/gtest.h>

#include <memory>

#include "checker/linearizability.h"
#include "core/replica.h"
#include "harness/cluster.h"
#include "object/kv_object.h"
#include "object/register_object.h"

namespace cht {
namespace {

using harness::ClusterConfig;

ClusterConfig base(std::uint64_t seed) {
  ClusterConfig c;
  c.n = 5;
  c.seed = seed;
  c.delta = Duration::millis(10);
  return c;
}

TEST(PolicyTest, LeaderForwardReadsAreCorrectButNotLocal) {
  harness::Cluster cluster(
      base(31), std::make_shared<object::RegisterObject>(),
      core::ConfigOverrides{.read_policy = core::ReadPolicy::kLeaderForward});
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  cluster.submit(0, object::RegisterObject::write("v"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  const int leader = cluster.steady_leader();
  const int follower = (leader + 1) % cluster.n();
  const auto before = cluster.sim().network().stats().sent_of(
      core::msg::kReadRequest);
  cluster.submit(follower, object::RegisterObject::read());
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  EXPECT_EQ(*cluster.history().ops().back().response, "v");
  EXPECT_GT(cluster.sim().network().stats().sent_of(core::msg::kReadRequest),
            before);
  // Forwarded reads take at least a round trip.
  EXPECT_GE(cluster.history().ops().back().latency(),
            2 * Duration::micros(500));
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

TEST(PolicyTest, AnyPendingBlocksIsConflictBlind) {
  // Under kAnyPendingBlocks, a read on a *different* key still blocks when a
  // write is in flight (PQL-style), unlike the paper's algorithm.
  harness::Cluster cluster(
      base(32), std::make_shared<object::KVObject>(),
      core::ConfigOverrides{.read_policy =
                                core::ReadPolicy::kAnyPendingBlocks});
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  const int follower = (leader + 1) % cluster.n();
  int blocked = 0;
  for (int i = 0; i < 50; ++i) {
    cluster.submit((leader + 2) % cluster.n(),
                   object::KVObject::put("hot", std::to_string(i)));
    cluster.run_for(Duration::millis(2));
    const auto before = cluster.replica(follower).metrics().value("reads_blocked");
    cluster.submit(follower, object::KVObject::get("cold"));
    blocked += static_cast<int>(
        cluster.replica(follower).metrics().value("reads_blocked") - before);
    cluster.run_for(Duration::millis(20));
  }
  EXPECT_GT(blocked, 10) << "conflict-blind reads should often block";
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(20)));
}

TEST(PolicyTest, AllAckGatePaysForCrashedProcessEveryWrite) {
  // Megastore-style: no leaseholder-set memory. Every write after the crash
  // pays the full invalidation wait.
  harness::Cluster cluster(
      base(33), std::make_shared<object::RegisterObject>(),
      core::ConfigOverrides{.commit_gate = core::CommitGate::kAllProcesses});
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  cluster.sim().crash(ProcessId((leader + 1) % cluster.n()));
  const int submitter = (leader + 2) % cluster.n();
  for (int i = 0; i < 3; ++i) {
    const RealTime t = cluster.sim().now();
    cluster.submit(submitter, object::RegisterObject::write(std::to_string(i)));
    ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(30)));
    const Duration took = cluster.sim().now() - t;
    // The expiry wait is max(t, ts_last_lease) + LeasePeriod + eps, and the
    // last grant may predate the write by up to a renewal interval.
    EXPECT_GT(took, cluster.core_config().lease_period -
                        2 * cluster.core_config().lease_renew_interval)
        << "write " << i << " should wait out the crashed process every time";
  }
}

TEST(PolicyTest, CommitWaitAddsEpsilonToEveryWrite) {
  const Duration wait = Duration::millis(25);
  harness::Cluster cluster(base(34), std::make_shared<object::RegisterObject>(),
                           core::ConfigOverrides{.commit_wait = wait});
  harness::Cluster baseline(base(34),
                            std::make_shared<object::RegisterObject>());
  for (auto* c : {&cluster, &baseline}) {
    ASSERT_TRUE(c->await_steady_leader(Duration::seconds(5)));
    c->run_for(Duration::seconds(1));
  }
  auto write_latency = [](harness::Cluster& c) {
    const RealTime t = c.sim().now();
    c.submit(1, object::RegisterObject::write("x"));
    EXPECT_TRUE(c.await_quiesce(Duration::seconds(10)));
    return c.sim().now() - t;
  };
  const Duration with_wait = write_latency(cluster);
  const Duration without = write_latency(baseline);
  // Commit-wait overlaps the tail of the commit protocol, so the measurable
  // floor is a bit below the full `wait`.
  EXPECT_GE(with_wait, without + wait / 2);
}

TEST(PolicyTest, SafeTimeReadsBlockEvenWithoutWrites) {
  // Spanner option (b): a read waits for the next safe-time beacon past its
  // timestamp — so follower reads always block, even on an idle object.
  harness::Cluster cluster(
      base(36), std::make_shared<object::RegisterObject>(),
      core::ConfigOverrides{.read_policy = core::ReadPolicy::kSafeTime});
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  const int follower = (leader + 1) % cluster.n();
  cluster.submit(leader, object::RegisterObject::write("v"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));  // idle: no writes in flight
  int blocked = 0;
  for (int i = 0; i < 20; ++i) {
    const auto before = cluster.replica(follower).metrics().value("reads_blocked");
    cluster.submit(follower, object::RegisterObject::read());
    blocked += static_cast<int>(
        cluster.replica(follower).metrics().value("reads_blocked") - before);
    cluster.run_for(Duration::millis(40));  // > renewal interval
  }
  EXPECT_EQ(blocked, 20) << "every safe-time follower read should block";
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  // ...and they are still correct.
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

TEST(PolicyTest, UnsafeLocalReadsViolateLinearizability) {
  // The lower-bound demonstration (Section 4): reads that answer instantly
  // from local state with no blocking produce stale values that the checker
  // catches. Scan seeds until the race materializes (deterministically).
  bool violation_found = false;
  for (std::uint64_t seed = 1; seed <= 20 && !violation_found; ++seed) {
    harness::Cluster cluster(
        base(seed), std::make_shared<object::RegisterObject>(),
        core::ConfigOverrides{.read_policy = core::ReadPolicy::kUnsafeLocal});
    if (!cluster.await_steady_leader(Duration::seconds(5))) continue;
    cluster.run_for(Duration::seconds(1));
    const int leader = cluster.steady_leader();
    const int follower = (leader + 1) % cluster.n();
    for (int i = 0; i < 40; ++i) {
      cluster.submit(leader, object::RegisterObject::write(std::to_string(i)));
      cluster.run_for(Duration::millis(3));
      cluster.submit(follower, object::RegisterObject::read());
      cluster.run_for(Duration::millis(15));
    }
    cluster.await_quiesce(Duration::seconds(20));
    const auto result =
        checker::check_linearizable(cluster.model(), cluster.history().ops());
    if (!result.linearizable) violation_found = true;
  }
  EXPECT_TRUE(violation_found)
      << "unsafe local reads should produce a linearizability violation";
}

}  // namespace
}  // namespace cht
