// The replication algorithm of Section 3.
//
// Each Replica is one of the paper's n processes. The paper structures a
// process as three parallel threads; in this event-driven runtime they map
// to:
//   Thread 1 (client operations)  -> submit_rmw / submit_read + retry timers
//   Thread 2 (leader loop)        -> leader_check/steady timers driving a
//                                    state machine (Collecting -> Fetching ->
//                                    initial DoOps -> Steady, DoOps nested)
//   Thread 3 (message handling)   -> on_message dispatch
//
// Black code (consensus for RMW operations): EstReq/EstReply, Prepare/
// PrepareAck, Commit, batch fetch. Red code (read leases): LeaseGrant,
// LeaseRequest, and the local read path. Reads never send messages; batch
// gap-filling runs on a fixed-rate anti-entropy timer plus commit-path
// triggers, so the message count is independent of the number of reads.
//
// Read correctness note (why answering from the *current* applied state is
// right): a read computes k-hat from its lease and the conflicting pending
// batches, then waits until the replica has applied at least k-hat. The
// replica may by then have applied batches beyond k-hat; any such batch was
// either non-conflicting (cannot change the read's value) or was committed,
// which — by the lease promise — required this process's Prepare ack or an
// expired lease; in the acked case the batch was pending here when the read
// computed k-hat, so k-hat already covers it, and in the applied case the
// state correctly reflects a batch whose RMWs may already have responded,
// which linearizability *requires* the read to observe.
#pragma once

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "client/gateway.h"
#include "common/time.h"
#include "common/types.h"
#include "core/config.h"
#include "core/messages.h"
#include "leader/enhanced_leader.h"
#include "leader/omega.h"
#include "metrics/registry.h"
#include "metrics/span.h"
#include "object/object.h"
#include "sim/process.h"

namespace cht::core {

class Replica : public sim::Process {
 public:
  using Callback = std::function<void(const object::Response&)>;

  Replica(std::shared_ptr<const object::ObjectModel> model, Config config);

  // --- Client API (paper Thread 1). Callbacks fire exactly once, possibly
  // synchronously (a non-blocking read completes inside submit_read).
  // submit_rmw returns the operation's protocol-level id so harnesses can
  // later ask "did this acknowledged write survive" (durability checking).
  OperationId submit_rmw(object::Operation op, Callback callback);
  // Networked-client entry point: submits an RMW under a caller-chosen id
  // (the client's session id, stable across retries). Duplicate ids — ones
  // already pending or already committed here — are ignored, which is what
  // makes client retries safe to re-inject.
  void submit_rmw_as(const OperationId& id, object::Operation op,
                     Callback callback = nullptr);
  void submit_read(object::Operation op, Callback callback);

  // Replica-side endpoint for networked clients (src/client/). Wired with
  // chtread-specific hooks in the constructor; exposed for tests.
  client::ReplicaGateway& client_gateway() { return gateway_; }

  // --- sim::Process ---------------------------------------------------------
  void on_start() override;
  // Crash-recovery extension (not in the paper, which assumes crash-stop;
  // deviation documented in DESIGN.md): replays the acceptor-side state that
  // was synced to StableStorage before any promise or acknowledgement left
  // this process, then rejoins as a follower. The lease is deliberately not
  // restored — a recovered process re-earns reads via a fresh LeaseGrant.
  void on_restart() override;
  void on_message(const sim::Message& message) override;

  // --- Introspection (tests, invariant checkers, benches) -------------------
  enum class Phase { kFollower, kCollecting, kFetching, kInitDoOps, kSteady };

  // One coherent copy of the externally observable protocol state, taken at
  // a single instant. Replaces the former pile of ad-hoc getters
  // (applied_upto()/max_known_batch()/lease()/leaseholders()/...): callers
  // snapshot once and read fields, so cross-field checks cannot interleave
  // with protocol events. Copies the batch store — do not call inside
  // run_until() polling predicates (use is_steady_leader() there).
  struct Snapshot {
    Phase phase = Phase::kFollower;
    bool steady_leader = false;  // steady phase and AmLeader still holds
    BatchNumber applied_upto = 0;
    BatchNumber max_known_batch = 0;
    std::optional<Estimate> estimate;
    std::optional<Lease> lease;
    std::set<int> leaseholders;
    std::map<BatchNumber, Batch> batches;
    std::size_t pending_reads = 0;
    std::size_t pending_rmws = 0;
    std::size_t forwarded_reads = 0;
    // Clock-health guard (clock_guard.h): whether this replica currently
    // distrusts its clock (lease reads degraded to the RMW path) and how
    // many times the state has flipped.
    bool clock_suspect = false;
    std::size_t clock_suspect_transitions = 0;
  };
  // Non-const: steady_leader evaluates AmLeader against the current clock.
  Snapshot snapshot();

  bool is_steady_leader();  // cheap form for run_until() polling predicates

  // Observability: protocol counters and span histograms (metric inventory
  // in docs/OBSERVABILITY.md). Enabled iff Config::metrics_enabled; never
  // read by protocol logic, so it cannot affect simulation behaviour.
  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

  const object::ObjectState& applied_state() const { return *state_; }
  const object::ObjectModel& model() const { return *model_; }
  leader::EnhancedLeaderService& leader_service() { return els_; }
  const Config& config() const { return config_; }
  // Clock-health guard state, exposed for the chaos checker's
  // exposure-window accounting and for tests.
  const ClockSkewGuard& clock_guard() const { return clock_guard_; }

 private:
  // --- Leader state machine -------------------------------------------------
  struct DoOpsState {
    Batch ops;
    BatchNumber number = 0;
    std::set<int> ackers;
    LocalTime prepare_started;
    bool majority_reached = false;
    bool waiting_expiry = false;
    bool commit_waited = false;  // Spanner-style commit_wait performed
    bool initial = false;
    sim::EventHandle resend_timer;
    sim::EventHandle gate_timer;
    sim::EventHandle expiry_timer;
  };

  struct PendingRmw {
    object::Operation op;
    Callback callback;
    sim::EventHandle retry_timer;
    // Degraded read riding the RMW path while this replica is clock-suspect:
    // counted as a read on completion, not as an RMW.
    bool is_read = false;
    RealTime invoked = RealTime::min();
  };

  struct PendingRead {
    object::Operation op;
    Callback callback;
    std::optional<BatchNumber> khat;
    RealTime invoked;
    std::optional<LocalTime> stamp;  // ReadPolicy::kSafeTime timestamp
    bool counted_blocked = false;
  };

  // Thread-2 driving.
  void leader_check_tick();
  void become_leader(LocalTime t);
  void abdicate();
  bool check_still_leader();  // AmLeader(leader_time_, now); abdicates if not

  // Leader initialization (lines 26-36).
  void send_est_reqs();
  void on_est_reply(ProcessId from, const msg::EstReply& reply);
  void maybe_finish_collecting();
  void fetch_tick();
  void maybe_finish_fetching();
  void begin_initial_commit();

  // DoOps (lines 52-70).
  void start_doops(Batch ops, BatchNumber number, bool initial);
  void send_prepares();
  void on_prepare_ack(ProcessId from, const msg::PrepareAck& ack);
  void maybe_reach_majority();
  // How long after Prepares start before condition (ii) of the leaseholder
  // gate may fire: the paper's 2*delta message round trip, widened by the
  // worst-case fsync delay a follower pays before its PrepareAck may leave
  // (group-commit window wait + its own covering sync, each up to 1.25x the
  // configured base). Firing later is always safe — the gate then just
  // waits longer for real acks instead of punting to the lease-expiry
  // wait — so this only needs to be an upper bound. Zero sync latency
  // degenerates to exactly the paper's 2*delta.
  Duration prepare_ack_deadline() const;
  void check_leaseholder_gate();
  void finish_doops();

  // Steady-state leader loop (lines 39-51).
  void enter_steady();
  void steady_tick();
  void issue_leases(LocalTime now);
  void maybe_start_next_batch();

  // Message handling (thread 3 + parts of thread 2).
  void on_rmw_request(ProcessId from, const msg::RmwRequest& request);
  void forward_read_send(const OperationId& id);
  void on_read_request(ProcessId from, const msg::ReadRequest& request);
  void on_read_reply(const msg::ReadReply& reply);
  void on_est_req(ProcessId from, const msg::EstReq& request);
  void on_prepare(ProcessId from, const msg::Prepare& prepare);
  void on_commit(const msg::Commit& commit);
  void on_lease_grant(ProcessId from, const msg::LeaseGrant& grant);
  void on_batch_request(ProcessId from, const msg::BatchRequest& request);

  // Shared machinery.
  void adopt_estimate(Batch ops, LocalTime t, BatchNumber j);
  void store_batch(BatchNumber number, const Batch& ops);
  // Crash recovery: stable-storage schema and replay (see on_restart).
  void seed_op_sequences();
  void persist_promised();
  void persist_estimate();
  void persist_batch(BatchNumber number, const Batch& ops);
  void recover_from_storage();
  void apply_ready();
  void complete_rmw(const OperationId& id, const object::Response& response);
  void rmw_send(const OperationId& id);
  void anti_entropy_tick();
  void request_missing_batches();
  BatchNumber fetch_target() const;
  void try_advance_reads();
  bool try_advance_read(PendingRead& read);
  // Clock-health guard: feed one received message's stamp pair; on a trip,
  // reroute the lease reads already pending here through the safe path.
  void guard_observe(const sim::Message& message);
  void submit_read_degraded(object::Operation op, Callback callback,
                            RealTime invoked);
  bool batch_conflicts_with(const object::Operation& read,
                            const Batch& batch) const;
  int majority() const { return cluster_size() / 2 + 1; }

  // --- Immutable wiring ---
  std::shared_ptr<const object::ObjectModel> model_;
  Config config_;
  leader::OmegaDetector omega_;
  leader::EnhancedLeaderService els_;

  // --- Observability (write-only from protocol code) ---
  metrics::Registry metrics_;
  metrics::Counter* c_rmws_submitted_;
  metrics::Counter* c_rmws_completed_;
  metrics::Counter* c_reads_submitted_;
  metrics::Counter* c_reads_completed_;
  metrics::Counter* c_reads_blocked_;
  metrics::Counter* c_batches_committed_;
  metrics::Counter* c_became_leader_;
  metrics::Counter* c_abdicated_;
  metrics::Histogram* h_read_block_;    // k-hat wait of blocked reads
  metrics::Histogram* h_lease_interval_;
  metrics::Span span_doops_prepare_;    // Prepare broadcast -> majority acks
  metrics::Span span_doops_gate_;       // majority -> leaseholder gate clear
  metrics::Span span_doops_total_;      // Prepare broadcast -> commit
  metrics::Span span_leader_init_;      // become_leader -> steady
  metrics::Span span_leader_reign_;     // become_leader -> abdicate
  metrics::Counter* c_recoveries_;
  metrics::Counter* c_recovered_batches_;
  metrics::Counter* c_clock_transitions_;
  metrics::Counter* c_reads_degraded_;
  metrics::Span span_recovery_;         // restart -> first live-protocol sign
  // Ends a protocol-phase span and mirrors it into sim::Trace.
  void end_span(metrics::Span& span, const char* name);

  // --- Networked-client endpoint (declared after metrics_: ctor order) ---
  client::ReplicaGateway gateway_;

  // --- Persistent per-process algorithm state (all three threads) ---
  std::map<BatchNumber, Batch> batches_;                    // Batch[]
  std::optional<Estimate> estimate_;                        // (Ops, ts, k)
  std::map<BatchNumber, Batch> pending_batch_;              // PendingBatch[]
  LocalTime promised_ = LocalTime::min();  // highest EstReq/Prepare engaged
  BatchNumber applied_upto_ = 0;
  BatchNumber max_known_batch_ = 0;
  std::unique_ptr<object::ObjectState> state_;
  // Ordered (not hashed): protocol state must never expose hash-order
  // nondeterminism, and an ordered map keeps any future iteration
  // deterministic by construction (detlint rule D3).
  std::map<OperationId, BatchNumber> committed_op_batch_;
  std::optional<Lease> lease_;
  ClockSkewGuard clock_guard_;

  // --- Client-side state (thread 1) ---
  std::int64_t rmw_seq_ = 0;
  std::map<OperationId, PendingRmw> pending_rmw_;
  std::list<PendingRead> pending_reads_;
  // ReadPolicy::kLeaderForward only: reads awaiting a leader reply.
  struct ForwardedRead {
    object::Operation op;
    Callback callback;
    RealTime invoked;
    sim::EventHandle retry_timer;
  };
  std::int64_t read_seq_ = 0;
  std::map<OperationId, ForwardedRead> forwarded_reads_;

  // --- Leader-side state (thread 2), reset on each reign ---
  Phase phase_ = Phase::kFollower;
  LocalTime leader_time_;                    // t: when this reign began
  std::map<int, msg::EstReply> est_replies_;
  std::optional<Estimate> chosen_;           // freshest collected estimate
  std::set<int> leaseholders_;
  LocalTime last_lease_issued_ = LocalTime::min();
  BatchNumber leader_next_batch_ = 1;
  std::map<OperationId, object::Operation> next_ops_;
  std::optional<DoOpsState> doops_;
  sim::EventHandle leader_check_timer_;
  sim::EventHandle estreq_timer_;
  sim::EventHandle fetch_timer_;
  sim::EventHandle steady_timer_;
  sim::EventHandle anti_entropy_timer_;
  RealTime last_commit_rebroadcast_ = RealTime::zero();
};

}  // namespace cht::core
