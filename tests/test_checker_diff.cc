// Differential validation of the linearizability checker: on small random
// histories, compare its verdict against a brute-force reference that tries
// every real-time-respecting permutation (and every take-effect subset of
// pending operations).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "checker/linearizability.h"
#include "common/rng.h"
#include "object/register_object.h"

namespace cht::checker {
namespace {

using object::ObjectModel;
using object::RegisterObject;

// Reference: recursive enumeration without memoization or pruning beyond
// the definition itself.
bool brute_force(const ObjectModel& model, const std::vector<HistoryOp>& ops) {
  const std::size_t n = ops.size();
  std::vector<bool> used(n, false);
  std::size_t completed_left = 0;
  for (const auto& op : ops) {
    if (op.completed()) ++completed_left;
  }

  std::function<bool(object::ObjectState&, std::size_t)> rec =
      [&](object::ObjectState& state, std::size_t remaining_completed) {
        if (remaining_completed == 0) return true;
        for (std::size_t i = 0; i < n; ++i) {
          if (used[i]) continue;
          // Real-time precedence: i cannot be next if some unused op's
          // response precedes i's invocation.
          bool blocked = false;
          for (std::size_t j = 0; j < n; ++j) {
            if (j == i || used[j] || !ops[j].completed()) continue;
            if (*ops[j].responded < ops[i].invoked) {
              blocked = true;
              break;
            }
          }
          if (blocked) continue;
          auto next = state.clone();
          const auto got = model.apply(*next, ops[i].op);
          if (ops[i].completed() && got != *ops[i].response) continue;
          used[i] = true;
          const bool ok =
              rec(*next, remaining_completed - (ops[i].completed() ? 1 : 0));
          used[i] = false;
          if (ok) return true;
        }
        return false;
      };
  auto state = model.make_initial_state();
  return rec(*state, completed_left);
}

TEST(CheckerDifferentialTest, MatchesBruteForceOnRandomHistories) {
  RegisterObject model("0");
  Rng rng(2024);
  int linearizable_count = 0;
  int violation_count = 0;
  for (int round = 0; round < 400; ++round) {
    // Random small history: overlapping intervals, writes of small values,
    // reads of possibly-wrong values, occasional pending ops.
    const int n_ops = static_cast<int>(rng.next_in(2, 7));
    std::vector<HistoryOp> ops;
    for (int i = 0; i < n_ops; ++i) {
      HistoryOp op;
      op.process = ProcessId(static_cast<int>(rng.next_below(3)));
      const std::int64_t invoke = rng.next_in(0, 60);
      op.invoked = RealTime::micros(invoke);
      const bool pending = rng.next_bool(0.2);
      if (!pending) {
        op.responded = RealTime::micros(invoke + rng.next_in(1, 40));
      }
      if (rng.next_bool(0.5)) {
        op.op = RegisterObject::write(std::to_string(rng.next_in(0, 2)));
        if (!pending) op.response = "ok";
      } else {
        op.op = RegisterObject::read();
        if (!pending) op.response = std::to_string(rng.next_in(0, 2));
      }
      ops.push_back(op);
    }
    const bool expected = brute_force(model, ops);
    const bool got = check_linearizable(model, ops).linearizable;
    ASSERT_EQ(got, expected) << "divergence at round " << round;
    if (expected) {
      ++linearizable_count;
    } else {
      ++violation_count;
    }
  }
  // The generator must exercise both verdicts meaningfully.
  EXPECT_GT(linearizable_count, 50);
  EXPECT_GT(violation_count, 50);
}

TEST(CheckerDifferentialTest, OrderReturnedIsAValidLinearization) {
  RegisterObject model("0");
  Rng rng(7);
  for (int round = 0; round < 100; ++round) {
    // Generate a history from an actual sequential execution, then jitter
    // the intervals so it stays linearizable.
    std::vector<HistoryOp> ops;
    auto state = model.make_initial_state();
    std::int64_t t = 0;
    for (int i = 0; i < 6; ++i) {
      HistoryOp op;
      op.process = ProcessId(0);
      op.op = rng.next_bool(0.5)
                  ? RegisterObject::write(std::to_string(i))
                  : RegisterObject::read();
      op.response = model.apply(*state, op.op);
      op.invoked = RealTime::micros(t);
      op.responded = RealTime::micros(t + rng.next_in(1, 9));
      t += 10;
      ops.push_back(op);
    }
    const auto result = check_linearizable(model, ops);
    ASSERT_TRUE(result.linearizable);
    ASSERT_EQ(result.order.size(), ops.size());
    // Replay the returned order (indices into invocation-sorted history).
    std::vector<HistoryOp> sorted = ops;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const HistoryOp& a, const HistoryOp& b) {
                       return a.invoked < b.invoked;
                     });
    auto replay = model.make_initial_state();
    for (std::size_t index : result.order) {
      const auto& op = sorted.at(index);
      ASSERT_EQ(model.apply(*replay, op.op), *op.response);
    }
  }
}

}  // namespace
}  // namespace cht::checker
