// E1 — Read locality (paper Sections 1 & 3).
//
// Claim: "reads are local: the number of messages sent during the execution
// does not depend on the number of reads performed". We fix a background RMW
// rate, sweep the read count over three orders of magnitude, and report the
// total messages on the wire and the marginal messages per read. For
// contrast, the same sweep runs with ReadPolicy::kLeaderForward (Spanner
// option (a)) and on Raft with ReadIndex reads, whose traffic grows linearly
// with reads.
#include <iostream>
#include <memory>

#include "common/bench_util.h"
#include "core/replica.h"
#include "object/kv_object.h"

namespace cht::bench {
namespace {

struct Result {
  std::int64_t messages;
  std::int64_t completed_reads;
};

harness::ClusterConfig base_config() {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = 99;
  config.delta = Duration::millis(10);
  return config;
}

// Fixed experiment body: 50 writes over 5 simulated seconds, plus `reads`
// reads spread evenly. Returns messages counted over the measured window.
template <class ClusterT>
Result run_window(ClusterT& cluster, int reads) {
  const auto before = cluster.sim().network().stats().sent;
  const int steps = 50;
  const int reads_per_step = reads / steps;
  for (int step = 0; step < steps; ++step) {
    cluster.submit(step % cluster.n(),
                   object::KVObject::put("k" + std::to_string(step % 4), "v"));
    for (int r = 0; r < reads_per_step; ++r) {
      cluster.submit((step + r) % cluster.n(),
                     object::KVObject::get("k" + std::to_string(r % 4)));
    }
    cluster.run_for(Duration::millis(100));
  }
  cluster.await_quiesce(Duration::seconds(60));
  return Result{static_cast<std::int64_t>(
                    cluster.sim().network().stats().sent - before),
                reads};
}

Result run_core(int reads, core::ReadPolicy policy) {
  harness::Cluster cluster(
      base_config(), std::make_shared<object::KVObject>(),
      [&](core::Config& c) { c.read_policy = policy; });
  cluster.await_steady_leader(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));
  return run_window(cluster, reads);
}

Result run_raft(int reads) {
  harness::RaftCluster cluster(base_config(),
                               std::make_shared<object::KVObject>());
  cluster.await_leader(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));
  return run_window(cluster, reads);
}

}  // namespace
}  // namespace cht::bench

int main() {
  using namespace cht;
  using namespace cht::bench;

  print_experiment_header(
      "E1: read locality — messages vs number of reads",
      "Claim (paper S1/S3): with the paper's algorithm the number of\n"
      "messages is independent of the number of reads (slope ~= 0 msg/read);\n"
      "leader-forwarded reads and Raft ReadIndex reads pay messages per read.");

  metrics::Table table({"reads", "ours: msgs", "ours: msg/read",
                        "fwd: msgs", "fwd: msg/read", "raft: msgs",
                        "raft: msg/read"});
  std::int64_t ours_base = 0, fwd_base = 0, raft_base = 0;
  for (int reads : {0, 100, 1000, 10000}) {
    const auto ours = run_core(reads, core::ReadPolicy::kLocalLease);
    const auto fwd = run_core(reads, core::ReadPolicy::kLeaderForward);
    const auto raft = run_raft(reads);
    if (reads == 0) {
      ours_base = ours.messages;
      fwd_base = fwd.messages;
      raft_base = raft.messages;
    }
    auto per_read = [&](std::int64_t messages, std::int64_t baseline) {
      if (reads == 0) return std::string("-");
      return metrics::Table::num(
          static_cast<double>(messages - baseline) / reads, 3);
    };
    table.add_row({metrics::Table::num(static_cast<std::int64_t>(reads)),
                   metrics::Table::num(ours.messages),
                   per_read(ours.messages, ours_base),
                   metrics::Table::num(fwd.messages),
                   per_read(fwd.messages, fwd_base),
                   metrics::Table::num(raft.messages),
                   per_read(raft.messages, raft_base)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: 'ours: msg/read' ~ 0 at every scale;\n"
               "'fwd' and 'raft' grow by >= 2 messages per read.\n";
  return 0;
}
