// Minimal JSON document builder + the versioned exporter for bench/tool
// artifacts. No external dependencies: the repo's artifacts (BENCH_*.json,
// --metrics-out) are written by `Value::write`, which emits deterministic,
// insertion-ordered, pretty-printed JSON so golden tests and diffs are
// stable byte for byte.
//
// Artifact schema (pinned; bump kBenchSchemaVersion on breaking change):
//   {
//     "schema": "cht.bench.v1", "schema_version": 1,
//     "name": "<artifact name>", "smoke": bool,
//     "sections":      [{id, claim, headers, rows, notes}],
//     "metrics":       {flat name -> number},
//     "configs":       [{label, cluster fields..., overrides{...}}],
//     "observability": [{label, counters{}, gauges{}, histograms{name ->
//                        {count,sum,min,max,mean,p50,p99,buckets}},
//                        messages{sent,delivered,dropped,by_type{}}}]
//   }
// docs/OBSERVABILITY.md documents the schema field by field; the golden
// schema test (tests/test_observability.cc) and tools/bench_diff.py enforce
// it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "metrics/registry.h"

namespace cht::metrics {

inline constexpr const char* kBenchSchema = "cht.bench.v1";
inline constexpr int kBenchSchemaVersion = 1;

namespace json {

// An owned JSON document node. Objects preserve insertion order.
class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT(runtime/explicit)
  Value(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  Value(int i) : kind_(Kind::kInt), int_(i) {}
  Value(std::size_t i) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(i)) {}
  Value(double d) : kind_(Kind::kDouble), double_(d) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}

  static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }

  // Array append; returns *this for chaining.
  Value& push(Value element);
  // Object field set (overwrites an existing key in place); returns *this.
  Value& set(std::string key, Value value);
  // Object field lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  std::size_t size() const;

  void write(std::ostream& out, int indent = 2, int depth = 0) const;
  std::string dump(int indent = 2) const;

 private:
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> elements_;
  std::vector<std::pair<std::string, Value>> fields_;
};

std::string escape(const std::string& s);

}  // namespace json

// {count, sum, min, max, mean, p50, p99, buckets:[[lower, count], ...]}
// (only non-empty buckets are listed).
json::Value histogram_to_json(const Histogram& histogram);

// {counters:{name: value}, gauges:{name: value}, histograms:{name: {...}}}.
json::Value registry_to_json(const Registry& registry);

}  // namespace cht::metrics
