// Latency/statistics helpers for tests and benchmark harnesses.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace cht::metrics {

// Collects duration samples; computes order statistics on demand.
class LatencyRecorder {
 public:
  void record(Duration d) { samples_.push_back(d); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  Duration min() const;
  Duration max() const;
  Duration mean() const;
  // q in [0, 1]; nearest-rank percentile.
  Duration percentile(double q) const;
  Duration p50() const { return percentile(0.50); }
  Duration p99() const { return percentile(0.99); }

  const std::vector<Duration>& samples() const { return samples_; }
  void clear() { samples_.clear(); }

 private:
  std::vector<Duration> samples_;
};

}  // namespace cht::metrics
